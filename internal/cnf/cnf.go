// Package cnf translates circuits and arithmetic side-constraints into CNF
// over an incremental SAT solver (internal/sat). It provides:
//
//   - Tseitin encoding of gate-level circuits, with sharing so the same
//     input variables can feed several circuit copies (the basis of miters,
//     the SAT attack, and the FALL functional analyses);
//   - cardinality constraints ("exactly k of these literals are true") in
//     two encodings, an adder-tree popcount and the Sinz sequential
//     counter, used for the Hamming-distance constraints of the
//     SlidingWindow and Distance2H analyses (paper §IV-B);
//   - small helpers (fresh gates, equality, difference clauses).
package cnf

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/sat"
)

// CardEncoding selects a cardinality-constraint encoding.
type CardEncoding int

// Available cardinality encodings. AdderTree builds a binary popcount with
// ripple-carry adders and compares against the constant; SeqCounter is the
// Sinz sequential ("commander-free") encoding of at-most-k applied twice.
const (
	AdderTree CardEncoding = iota
	SeqCounter
)

func (e CardEncoding) String() string {
	if e == AdderTree {
		return "adder-tree"
	}
	return "seq-counter"
}

// ParseCardEncoding parses a cardinality-encoding name as accepted by
// the CLIs and campaign plans: "adder"/"adder-tree" or
// "seq"/"seq-counter". The empty string selects AdderTree (the default).
func ParseCardEncoding(s string) (CardEncoding, error) {
	switch s {
	case "", "adder", "adder-tree":
		return AdderTree, nil
	case "seq", "seq-counter":
		return SeqCounter, nil
	}
	return AdderTree, fmt.Errorf("cnf: unknown cardinality encoding %q (want adder or seq)", s)
}

// Encoder owns a clause sink and allocates auxiliary variables for Tseitin
// encodings built on top of it. Any sat.ClauseSink works — a single
// solver, a racing portfolio, an external backend, or a buffering
// sat.Stream whose frozen snapshot later primes any number of engines.
type Encoder struct {
	S sat.ClauseSink

	haveConst bool
	trueLit   sat.Lit
}

// NewEncoder wraps an existing engine or stream.
func NewEncoder(s sat.ClauseSink) *Encoder { return &Encoder{S: s} }

// ForkOnto returns a new Encoder continuing this encoder's Tseitin
// encoding on sink s — typically an engine primed (sat.Prime) with the
// frozen prefix this encoder built into a sat.Stream. The
// constant-literal state carries over, so ConstLit on the fork reuses
// the prefix's constant instead of allocating and constraining a
// second one (which would desync variable numbering from a direct,
// unforked construction).
func (e *Encoder) ForkOnto(s sat.ClauseSink) *Encoder {
	return &Encoder{S: s, haveConst: e.haveConst, trueLit: e.trueLit}
}

// NewLit allocates a fresh variable and returns its positive literal.
func (e *Encoder) NewLit() sat.Lit { return sat.PosLit(e.S.NewVar()) }

// ConstLit returns a literal that is constrained to the constant v.
func (e *Encoder) ConstLit(v bool) sat.Lit {
	if !e.haveConst {
		e.trueLit = e.NewLit()
		e.S.AddClause(e.trueLit)
		e.haveConst = true
	}
	if v {
		return e.trueLit
	}
	return e.trueLit.Neg()
}

// Fix adds a unit clause asserting literal l equals v.
func (e *Encoder) Fix(l sat.Lit, v bool) {
	if v {
		e.S.AddClause(l)
	} else {
		e.S.AddClause(l.Neg())
	}
}

// And returns a literal equivalent to the conjunction of lits.
func (e *Encoder) And(lits ...sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return e.ConstLit(true)
	case 1:
		return lits[0]
	}
	z := e.NewLit()
	long := make([]sat.Lit, 0, len(lits)+1)
	long = append(long, z)
	for _, a := range lits {
		e.S.AddClause(z.Neg(), a)
		long = append(long, a.Neg())
	}
	e.S.AddClause(long...)
	return z
}

// Or returns a literal equivalent to the disjunction of lits.
func (e *Encoder) Or(lits ...sat.Lit) sat.Lit {
	neg := make([]sat.Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	return e.And(neg...).Neg()
}

// Xor returns a literal equivalent to a XOR b.
func (e *Encoder) Xor(a, b sat.Lit) sat.Lit {
	z := e.NewLit()
	e.S.AddClause(z.Neg(), a, b)
	e.S.AddClause(z.Neg(), a.Neg(), b.Neg())
	e.S.AddClause(z, a.Neg(), b)
	e.S.AddClause(z, a, b.Neg())
	return z
}

// XorMany folds Xor over lits (at least one literal required).
func (e *Encoder) XorMany(lits ...sat.Lit) sat.Lit {
	if len(lits) == 0 {
		panic("cnf: XorMany of zero literals")
	}
	z := lits[0]
	for _, l := range lits[1:] {
		z = e.Xor(z, l)
	}
	return z
}

// Ite returns a literal equivalent to "if c then t else f".
func (e *Encoder) Ite(c, t, f sat.Lit) sat.Lit {
	z := e.NewLit()
	e.S.AddClause(c.Neg(), t.Neg(), z)
	e.S.AddClause(c.Neg(), t, z.Neg())
	e.S.AddClause(c, f.Neg(), z)
	e.S.AddClause(c, f, z.Neg())
	return z
}

// EncodeCircuit Tseitin-encodes circuit c with fresh variables for every
// input and returns one literal per node (indexed by node id) giving that
// node's value.
func (e *Encoder) EncodeCircuit(c *circuit.Circuit) []sat.Lit {
	return e.EncodeCircuitWith(c, nil)
}

// EncodeCircuitWith Tseitin-encodes circuit c. given may map input node
// ids to pre-existing literals so that several circuit copies can share
// inputs (or key variables); inputs absent from given receive fresh
// variables. The result maps every node id to its literal.
func (e *Encoder) EncodeCircuitWith(c *circuit.Circuit, given map[int]sat.Lit) []sat.Lit {
	lits := make([]sat.Lit, c.Len())
	for id := range c.Nodes {
		n := &c.Nodes[id]
		switch n.Type {
		case circuit.Input:
			if l, ok := given[id]; ok {
				lits[id] = l
			} else {
				lits[id] = e.NewLit()
			}
		case circuit.Const0:
			lits[id] = e.ConstLit(false)
		case circuit.Const1:
			lits[id] = e.ConstLit(true)
		case circuit.Buf:
			lits[id] = lits[n.Fanins[0]]
		case circuit.Not:
			lits[id] = lits[n.Fanins[0]].Neg()
		case circuit.And, circuit.Nand:
			ins := make([]sat.Lit, len(n.Fanins))
			for i, f := range n.Fanins {
				ins[i] = lits[f]
			}
			z := e.And(ins...)
			if n.Type == circuit.Nand {
				z = z.Neg()
			}
			lits[id] = z
		case circuit.Or, circuit.Nor:
			ins := make([]sat.Lit, len(n.Fanins))
			for i, f := range n.Fanins {
				ins[i] = lits[f]
			}
			z := e.Or(ins...)
			if n.Type == circuit.Nor {
				z = z.Neg()
			}
			lits[id] = z
		case circuit.Xor, circuit.Xnor:
			ins := make([]sat.Lit, len(n.Fanins))
			for i, f := range n.Fanins {
				ins[i] = lits[f]
			}
			z := e.XorMany(ins...)
			if n.Type == circuit.Xnor {
				z = z.Neg()
			}
			lits[id] = z
		default:
			panic(fmt.Sprintf("cnf: unknown gate type %v", n.Type))
		}
	}
	return lits
}

// XorPairs returns literals d_i = xs_i XOR ys_i. The slices must have equal
// length.
func (e *Encoder) XorPairs(xs, ys []sat.Lit) []sat.Lit {
	if len(xs) != len(ys) {
		panic("cnf: XorPairs length mismatch")
	}
	ds := make([]sat.Lit, len(xs))
	for i := range xs {
		ds[i] = e.Xor(xs[i], ys[i])
	}
	return ds
}

// NotEqual adds the constraint that the vectors as and bs differ in at
// least one position.
func (e *Encoder) NotEqual(as, bs []sat.Lit) {
	ds := e.XorPairs(as, bs)
	e.S.AddClause(ds...)
}

// EqualVec adds the constraint as_i == bs_i for all i.
func (e *Encoder) EqualVec(as, bs []sat.Lit) {
	if len(as) != len(bs) {
		panic("cnf: EqualVec length mismatch")
	}
	for i := range as {
		e.S.AddClause(as[i].Neg(), bs[i])
		e.S.AddClause(as[i], bs[i].Neg())
	}
}

// ExactlyK constrains exactly k of lits to be true, using the requested
// encoding.
func (e *Encoder) ExactlyK(lits []sat.Lit, k int, enc CardEncoding) {
	n := len(lits)
	if k < 0 || k > n {
		// Unsatisfiable request; add the empty clause.
		e.S.AddClause()
		return
	}
	switch enc {
	case AdderTree:
		bits := e.Popcount(lits)
		e.fixBinary(bits, k)
	case SeqCounter:
		e.AtMostKSeq(lits, k)
		neg := make([]sat.Lit, n)
		for i, l := range lits {
			neg[i] = l.Neg()
		}
		e.AtMostKSeq(neg, n-k)
	default:
		panic("cnf: unknown cardinality encoding")
	}
}

// HammingEq constrains the Hamming distance between vectors xs and ys to
// be exactly k.
func (e *Encoder) HammingEq(xs, ys []sat.Lit, k int, enc CardEncoding) {
	e.ExactlyK(e.XorPairs(xs, ys), k, enc)
}

// Popcount returns the little-endian binary representation (as literals)
// of the number of true literals in lits, built from half/full adders.
func (e *Encoder) Popcount(lits []sat.Lit) []sat.Lit {
	switch len(lits) {
	case 0:
		return nil
	case 1:
		return []sat.Lit{lits[0]}
	}
	mid := len(lits) / 2
	return e.addBinary(e.Popcount(lits[:mid]), e.Popcount(lits[mid:]))
}

// addBinary returns as + bs as little-endian literal vectors via ripple
// carry.
func (e *Encoder) addBinary(as, bs []sat.Lit) []sat.Lit {
	if len(as) < len(bs) {
		as, bs = bs, as
	}
	out := make([]sat.Lit, 0, len(as)+1)
	carry := sat.LitUndef
	for i := range as {
		a := as[i]
		b := sat.LitUndef
		if i < len(bs) {
			b = bs[i]
		}
		switch {
		case b == sat.LitUndef && carry == sat.LitUndef:
			out = append(out, a)
		case b == sat.LitUndef:
			s, c := e.halfAdder(a, carry)
			out = append(out, s)
			carry = c
		case carry == sat.LitUndef:
			s, c := e.halfAdder(a, b)
			out = append(out, s)
			carry = c
		default:
			s, c := e.fullAdder(a, b, carry)
			out = append(out, s)
			carry = c
		}
	}
	if carry != sat.LitUndef {
		out = append(out, carry)
	}
	return out
}

func (e *Encoder) halfAdder(a, b sat.Lit) (sum, carry sat.Lit) {
	return e.Xor(a, b), e.And(a, b)
}

func (e *Encoder) fullAdder(a, b, cin sat.Lit) (sum, carry sat.Lit) {
	axb := e.Xor(a, b)
	sum = e.Xor(axb, cin)
	carry = e.Or(e.And(a, b), e.And(cin, axb))
	return sum, carry
}

// fixBinary constrains the little-endian bit vector to equal constant k.
func (e *Encoder) fixBinary(bits []sat.Lit, k int) {
	for i, b := range bits {
		e.Fix(b, k&(1<<uint(i)) != 0)
	}
	if k>>uint(len(bits)) != 0 {
		e.S.AddClause() // k not representable: unsatisfiable
	}
}

// AtMostKSeq adds the Sinz sequential-counter encoding of "at most k of
// lits are true".
func (e *Encoder) AtMostKSeq(lits []sat.Lit, k int) {
	n := len(lits)
	if k >= n {
		return
	}
	if k == 0 {
		for _, l := range lits {
			e.S.AddClause(l.Neg())
		}
		return
	}
	// r[i][j]: among lits[0..i], at least j+1 are true (one-directional).
	r := make([][]sat.Lit, n)
	for i := range r {
		r[i] = make([]sat.Lit, k)
		for j := range r[i] {
			r[i][j] = e.NewLit()
		}
	}
	e.S.AddClause(lits[0].Neg(), r[0][0])
	for j := 1; j < k; j++ {
		e.S.AddClause(r[0][j].Neg())
	}
	for i := 1; i < n; i++ {
		e.S.AddClause(lits[i].Neg(), r[i][0])
		e.S.AddClause(r[i-1][0].Neg(), r[i][0])
		for j := 1; j < k; j++ {
			e.S.AddClause(lits[i].Neg(), r[i-1][j-1].Neg(), r[i][j])
			e.S.AddClause(r[i-1][j].Neg(), r[i][j])
		}
		e.S.AddClause(lits[i].Neg(), r[i-1][k-1].Neg())
	}
}

// EncodedOutputs returns the literals of circuit outputs given the per-node
// literal map from EncodeCircuit.
func EncodedOutputs(c *circuit.Circuit, lits []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = lits[o]
	}
	return out
}

// InputLits returns the literals of the given node ids (typically inputs)
// from the per-node literal map.
func InputLits(ids []int, lits []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(ids))
	for i, id := range ids {
		out[i] = lits[id]
	}
	return out
}
