package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/lock"
	"repro/internal/testcirc"
)

func TestTerminalsAndVar(t *testing.T) {
	m := New(3, 0)
	x := m.Var(0)
	if x == True || x == False {
		t.Fatal("variable is a terminal")
	}
	if m.Eval(x, []bool{true, false, false}) != true {
		t.Error("x0 under x0=1 should be true")
	}
	if m.Eval(x, []bool{false, true, true}) != false {
		t.Error("x0 under x0=0 should be false")
	}
}

func TestBasicOps(t *testing.T) {
	m := New(2, 0)
	a, b := m.Var(0), m.Var(1)
	and, _ := m.And(a, b)
	or, _ := m.Or(a, b)
	xor, _ := m.Xor(a, b)
	na, _ := m.Not(a)
	for p := 0; p < 4; p++ {
		va, vb := p&1 == 1, p&2 == 2
		assign := []bool{va, vb}
		if m.Eval(and, assign) != (va && vb) {
			t.Errorf("and(%v,%v)", va, vb)
		}
		if m.Eval(or, assign) != (va || vb) {
			t.Errorf("or(%v,%v)", va, vb)
		}
		if m.Eval(xor, assign) != (va != vb) {
			t.Errorf("xor(%v,%v)", va, vb)
		}
		if m.Eval(na, assign) != !va {
			t.Errorf("not(%v)", va)
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3, 0)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a AND b) OR c built two different ways must be the same node.
	ab, _ := m.And(a, b)
	f1, _ := m.Or(ab, c)
	nc, _ := m.Not(c)
	nab, _ := m.Not(ab)
	bad, _ := m.And(nab, nc)
	f2, _ := m.Not(bad) // De Morgan
	if f1 != f2 {
		t.Error("equivalent functions got different nodes (canonicity violated)")
	}
}

func TestRestrict(t *testing.T) {
	m := New(2, 0)
	a, b := m.Var(0), m.Var(1)
	xor, _ := m.Xor(a, b)
	r0, _ := m.Restrict(xor, 0, false)
	if r0 != b {
		t.Error("xor|a=0 != b")
	}
	r1, _ := m.Restrict(xor, 0, true)
	nb, _ := m.Not(b)
	if r1 != nb {
		t.Error("xor|a=1 != ~b")
	}
}

func TestUnateness(t *testing.T) {
	m := New(3, 0)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	nb, _ := m.Not(b)
	cube, _ := m.And(a, nb) // a & ~b: pos in a, neg in b, independent of c
	cube, _ = m.And(cube, True)
	if u, _ := m.UnatenessIn(cube, 0); u != PositiveUnate {
		t.Errorf("a: %v", u)
	}
	if u, _ := m.UnatenessIn(cube, 1); u != NegativeUnate {
		t.Errorf("b: %v", u)
	}
	if u, _ := m.UnatenessIn(cube, 2); u != Independent {
		t.Errorf("c: %v", u)
	}
	xor, _ := m.Xor(a, b)
	if u, _ := m.UnatenessIn(xor, 0); u != Binate {
		t.Errorf("xor in a: %v", u)
	}
	_ = c
}

func TestSatCount(t *testing.T) {
	m := New(4, 0)
	a, b := m.Var(0), m.Var(1)
	and, _ := m.And(a, b)
	if got := m.SatCount(and); got != 4 { // a&b over 4 vars: 2^2 assignments
		t.Errorf("satcount(a&b) = %v, want 4", got)
	}
	if got := m.SatCount(True); got != 16 {
		t.Errorf("satcount(true) = %v, want 16", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("satcount(false) = %v, want 0", got)
	}
}

func TestAnySatAndSupport(t *testing.T) {
	m := New(3, 0)
	a, c := m.Var(0), m.Var(2)
	nc, _ := m.Not(c)
	f, _ := m.And(a, nc)
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Errorf("support = %v, want [0 2]", sup)
	}
	assign := m.AnySat(f)
	if assign == nil || !m.Eval(f, assign) {
		t.Errorf("AnySat returned non-satisfying %v", assign)
	}
	if m.AnySat(False) != nil {
		t.Error("AnySat(False) should be nil")
	}
}

func TestNodeLimit(t *testing.T) {
	// A tiny budget must trigger ErrNodeLimit on a parity chain (whose
	// BDD is linear but intermediate ITE allocations exceed 8 nodes).
	m := New(16, 8)
	f := m.Var(0)
	var err error
	for i := 1; i < 16; i++ {
		f, err = m.Xor(f, m.Var(i))
		if err != nil {
			break
		}
	}
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

// Property: BDD evaluation of random circuits agrees with simulation.
func TestQuickFromCircuitAgreesWithSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := testcirc.Random(rng, 4+rng.Intn(4), 10+rng.Intn(30))
		m := New(len(c.Inputs()), 0)
		nodes, err := FromCircuit(m, c)
		if err != nil {
			return false
		}
		out := c.Outputs[0]
		ins := c.Inputs()
		for trial := 0; trial < 16; trial++ {
			assign := map[int]bool{}
			bddAssign := make([]bool, len(ins))
			for i, id := range ins {
				v := rng.Intn(2) == 1
				assign[id] = v
				bddAssign[i] = v
			}
			if m.Eval(nodes[out], bddAssign) != c.Eval(assign)[out] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCubeFromUnatenessOnTTLockStripper(t *testing.T) {
	// Extract the cube of a real TTLock stripper cone with the BDD
	// engine and confirm it matches the planted cube.
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find the stripper: a node whose support is the 4 protected inputs
	// and no keys, and which is a cube function. Walk all such nodes.
	locked := lr.Locked
	found := false
	for id := range locked.Nodes {
		if locked.Nodes[id].Type == circuit.Input {
			continue
		}
		sup := locked.Support(id)
		if len(sup) != 4 {
			continue
		}
		hasKey := false
		for _, s := range sup {
			if locked.Nodes[s].IsKey {
				hasKey = true
			}
		}
		if hasKey {
			continue
		}
		cone, im := locked.Cone(id)
		cube, ok, err := CubeFromUnateness(cone, 0)
		if err != nil || !ok {
			continue
		}
		eq, err := EquivalentToStrip(cone, cube, 0, 0)
		if err != nil || !eq {
			continue
		}
		// Verify against the planted cube.
		match := true
		for ci, orig := range im {
			name := locked.Nodes[orig].Name
			if cube[ci] != lr.Cube[name] {
				match = false
			}
		}
		if match {
			found = true
		}
	}
	if !found {
		t.Error("BDD engine failed to locate and extract the planted cube")
	}
}

func TestEquivalentToStripCounts(t *testing.T) {
	// SatCount of strip_h must be C(m,h); verify via stripBDD.
	m := New(6, 0)
	inputs := []int{10, 11, 12, 13, 14, 15} // arbitrary ids
	cube := map[int]bool{10: true, 11: false, 12: true, 13: false, 14: true, 15: false}
	for h := 0; h <= 3; h++ {
		f, err := stripBDD(m, inputs, cube, h)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(binom(6, h))
		if got := m.SatCount(f); math.Abs(got-want) > 1e-9 {
			t.Errorf("h=%d: satcount = %v, want %v", h, got, want)
		}
	}
}

func binom(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestEquivalentToStripRejectsWrongCube(t *testing.T) {
	// Build a cube circuit and check against a wrong cube.
	c := circuit.New("cube")
	a := c.AddInput("a")
	b := c.AddInput("b")
	nb := c.MustGate("nb", circuit.Not, b)
	g := c.MustGate("g", circuit.And, a, nb)
	c.MarkOutput(g)
	right := map[int]bool{a: true, b: false}
	wrong := map[int]bool{a: false, b: true}
	if ok, err := EquivalentToStrip(c, right, 0, 0); err != nil || !ok {
		t.Errorf("right cube rejected: %v %v", ok, err)
	}
	if ok, err := EquivalentToStrip(c, wrong, 0, 0); err != nil || ok {
		t.Errorf("wrong cube accepted: %v %v", ok, err)
	}
}

// Property: BDD unateness agrees with exhaustive truth-table unateness on
// random small circuits.
func TestQuickUnatenessAgainstTruthTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn := 3 + rng.Intn(3)
		c := testcirc.Random(rng, nIn, 8+rng.Intn(20))
		ins := c.Inputs()
		m := New(nIn, 0)
		nodes, err := FromCircuit(m, c)
		if err != nil {
			return false
		}
		fn := nodes[c.Outputs[0]]
		for vi := range ins {
			got, err := m.UnatenessIn(fn, vi)
			if err != nil {
				return false
			}
			pos, neg := true, true
			for p := 0; p < 1<<uint(nIn); p++ {
				if p&(1<<uint(vi)) != 0 {
					continue // enumerate with vi = 0
				}
				assign := map[int]bool{}
				ba := make([]bool, nIn)
				for i, id := range ins {
					v := p&(1<<uint(i)) != 0
					assign[id] = v
					ba[i] = v
				}
				f0 := c.Eval(assign)[c.Outputs[0]]
				assign[ins[vi]] = true
				f1 := c.Eval(assign)[c.Outputs[0]]
				if f0 && !f1 {
					pos = false
				}
				if f1 && !f0 {
					neg = false
				}
			}
			var want Unateness
			switch {
			case pos && neg:
				want = Independent
			case pos:
				want = PositiveUnate
			case neg:
				want = NegativeUnate
			default:
				want = Binate
			}
			if got != want {
				t.Logf("seed %d var %d: got %v want %v", seed, vi, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
