// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with a unique table and memoized ITE, plus the circuit-analysis
// operations the FALL attack needs: unateness checking, cofactors,
// on-set counting and equivalence. It serves as an alternative exact
// engine to the SAT-based analyses (DESIGN.md experiment E9): BDDs excel
// on the small, structured cube-stripper cones the attack isolates, while
// SAT scales to cones whose BDDs blow up. The bypass/BDD trade-off
// analysis of Xu et al. [28] motivates having both.
package bdd

import (
	"fmt"
	"math"
)

// Node is a BDD node reference. Terminals are False (0) and True (1).
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level   int32 // variable index; terminals use math.MaxInt32
	low, hi Node
}

const terminalLevel = math.MaxInt32

// Manager owns the node pool, unique table and operation caches.
type Manager struct {
	nodes    []nodeData
	unique   map[nodeData]Node
	iteCache map[[3]Node]Node
	nVars    int
	maxNodes int
}

// ErrNodeLimit is returned (via panic/recover inside exported calls) when
// the manager exceeds its node budget, signalling BDD blow-up so callers
// can fall back to SAT.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded")

type limitPanic struct{}

// New creates a manager with the given number of variables and a node
// budget (0 means a default of 1<<20 nodes).
func New(nVars, maxNodes int) *Manager {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	m := &Manager{
		unique:   make(map[nodeData]Node),
		iteCache: make(map[[3]Node]Node),
		nVars:    nVars,
		maxNodes: maxNodes,
	}
	m.nodes = append(m.nodes,
		nodeData{level: terminalLevel}, // False
		nodeData{level: terminalLevel}, // True
	)
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nVars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) Node {
	if i < 0 || i >= m.nVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(int32(i), False, True)
}

// VarNode is Var with the node budget reported as ErrNodeLimit instead
// of a panic, for callers building formulas outside the apply-style
// operations (the bddengine solver adapter).
func (m *Manager) VarNode(i int) (n Node, err error) {
	defer m.guard(&err)
	return m.Var(i), nil
}

func (m *Manager) mk(level int32, low, hi Node) Node {
	if low == hi {
		return low
	}
	key := nodeData{level: level, low: low, hi: hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	if len(m.nodes) >= m.maxNodes {
		panic(limitPanic{})
	}
	m.nodes = append(m.nodes, key)
	n := Node(len(m.nodes) - 1)
	m.unique[key] = n
	return n
}

// guard converts a node-limit panic into ErrNodeLimit.
func (m *Manager) guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(limitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

func (m *Manager) level(n Node) int32 { return m.nodes[n].level }

// ite computes if-then-else(f, g, h) with memoization.
func (m *Manager) ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Node{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ite(f0, g0, h0), m.ite(f1, g1, h1))
	m.iteCache[key] = r
	return r
}

func (m *Manager) cofactors(n Node, level int32) (lo, hi Node) {
	if m.level(n) != level {
		return n, n
	}
	return m.nodes[n].low, m.nodes[n].hi
}

// Apply-style operations. Each returns ErrNodeLimit if the node budget is
// exhausted.

// Not returns the complement of f.
func (m *Manager) Not(f Node) (r Node, err error) {
	defer m.guard(&err)
	return m.ite(f, False, True), nil
}

// And returns f AND g.
func (m *Manager) And(f, g Node) (r Node, err error) {
	defer m.guard(&err)
	return m.ite(f, g, False), nil
}

// Or returns f OR g.
func (m *Manager) Or(f, g Node) (r Node, err error) {
	defer m.guard(&err)
	return m.ite(f, True, g), nil
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) (r Node, err error) {
	defer m.guard(&err)
	ng := m.ite(g, False, True)
	return m.ite(f, ng, g), nil
}

// Restrict returns f with variable v fixed to value.
func (m *Manager) Restrict(f Node, v int, value bool) (r Node, err error) {
	defer m.guard(&err)
	return m.restrict(f, int32(v), value, map[Node]Node{}), nil
}

func (m *Manager) restrict(f Node, v int32, value bool, memo map[Node]Node) Node {
	l := m.level(f)
	if l > v {
		return f // f does not depend on v (ordered BDD)
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r Node
	if l == v {
		if value {
			r = m.nodes[f].hi
		} else {
			r = m.nodes[f].low
		}
	} else {
		r = m.mk(l, m.restrict(m.nodes[f].low, v, value, memo),
			m.restrict(m.nodes[f].hi, v, value, memo))
	}
	memo[f] = r
	return r
}

// Implies reports whether f -> g is a tautology.
func (m *Manager) Implies(f, g Node) (bool, error) {
	ng, err := m.Not(g)
	if err != nil {
		return false, err
	}
	bad, err := m.And(f, ng)
	if err != nil {
		return false, err
	}
	return bad == False, nil
}

// Unateness verdicts for a variable.
type Unateness int

// Unateness classifications of a function in one variable.
const (
	Binate Unateness = iota
	PositiveUnate
	NegativeUnate
	Independent // both positive and negative unate
)

func (u Unateness) String() string {
	switch u {
	case PositiveUnate:
		return "positive-unate"
	case NegativeUnate:
		return "negative-unate"
	case Independent:
		return "independent"
	default:
		return "binate"
	}
}

// UnatenessIn classifies f's dependence on variable v: f is positive
// unate when f|v=0 <= f|v=1 and negative unate for the converse
// (Lemma 1's property, decided exactly on the BDD).
func (m *Manager) UnatenessIn(f Node, v int) (Unateness, error) {
	f0, err := m.Restrict(f, v, false)
	if err != nil {
		return Binate, err
	}
	f1, err := m.Restrict(f, v, true)
	if err != nil {
		return Binate, err
	}
	pos, err := m.Implies(f0, f1)
	if err != nil {
		return Binate, err
	}
	neg, err := m.Implies(f1, f0)
	if err != nil {
		return Binate, err
	}
	switch {
	case pos && neg:
		return Independent, nil
	case pos:
		return PositiveUnate, nil
	case neg:
		return NegativeUnate, nil
	default:
		return Binate, nil
	}
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for < 2^53).
func (m *Manager) SatCount(f Node) float64 {
	memo := map[Node]float64{}
	var count func(n Node) float64
	count = func(n Node) float64 {
		if n == False {
			return 0
		}
		if n == True {
			return math.Exp2(float64(m.nVars))
		}
		if c, ok := memo[n]; ok {
			return c
		}
		// Each child count is over all variables; halve per decision.
		c := 0.5*count(m.nodes[n].low) + 0.5*count(m.nodes[n].hi)
		memo[n] = c
		return c
	}
	return count(f)
}

// Support returns the variables f depends on, in increasing order.
func (m *Manager) Support(f Node) []int {
	seen := map[Node]bool{}
	vars := map[int32]bool{}
	var walk func(n Node)
	walk = func(n Node) {
		if n <= True || seen[n] {
			return
		}
		seen[n] = true
		vars[m.nodes[n].level] = true
		walk(m.nodes[n].low)
		walk(m.nodes[n].hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := int32(0); v < int32(m.nVars); v++ {
		if vars[v] {
			out = append(out, int(v))
		}
	}
	return out
}

// AnySat returns one satisfying assignment of f (nil if f is False).
// Unconstrained variables are reported as false.
func (m *Manager) AnySat(f Node) []bool {
	if f == False {
		return nil
	}
	assign := make([]bool, m.nVars)
	n := f
	for n > True {
		d := m.nodes[n]
		if d.hi != False {
			assign[d.level] = true
			n = d.hi
		} else {
			n = d.low
		}
	}
	return assign
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f Node, assign []bool) bool {
	n := f
	for n > True {
		d := m.nodes[n]
		if assign[d.level] {
			n = d.hi
		} else {
			n = d.low
		}
	}
	return n == True
}
