package bdd

import (
	"fmt"

	"repro/internal/circuit"
)

// FromCircuit builds BDDs for every node of the circuit. Inputs are
// assigned BDD variables in id order (input i in c.Inputs() order gets
// variable i). It returns one BDD node per circuit node, or ErrNodeLimit
// on blow-up.
func FromCircuit(m *Manager, c *circuit.Circuit) ([]Node, error) {
	inputs := c.Inputs()
	if m.NumVars() < len(inputs) {
		return nil, fmt.Errorf("bdd: manager has %d vars, circuit needs %d", m.NumVars(), len(inputs))
	}
	varOf := make(map[int]int, len(inputs))
	for i, id := range inputs {
		varOf[id] = i
	}
	out := make([]Node, c.Len())
	for id := range c.Nodes {
		n := &c.Nodes[id]
		var err error
		switch n.Type {
		case circuit.Input:
			out[id] = m.Var(varOf[id])
		case circuit.Const0:
			out[id] = False
		case circuit.Const1:
			out[id] = True
		case circuit.Buf:
			out[id] = out[n.Fanins[0]]
		case circuit.Not:
			out[id], err = m.Not(out[n.Fanins[0]])
		case circuit.And, circuit.Nand:
			v := True
			for _, f := range n.Fanins {
				if v, err = m.And(v, out[f]); err != nil {
					return nil, err
				}
			}
			if n.Type == circuit.Nand {
				v, err = m.Not(v)
			}
			out[id] = v
		case circuit.Or, circuit.Nor:
			v := False
			for _, f := range n.Fanins {
				if v, err = m.Or(v, out[f]); err != nil {
					return nil, err
				}
			}
			if n.Type == circuit.Nor {
				v, err = m.Not(v)
			}
			out[id] = v
		case circuit.Xor, circuit.Xnor:
			v := False
			for _, f := range n.Fanins {
				if v, err = m.Xor(v, out[f]); err != nil {
					return nil, err
				}
			}
			if n.Type == circuit.Xnor {
				v, err = m.Not(v)
			}
			out[id] = v
		default:
			return nil, fmt.Errorf("bdd: unknown gate type %v", n.Type)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CubeFromUnateness is the BDD-engine counterpart of the FALL attack's
// AnalyzeUnateness (Lemma 1): given a single-output cone circuit, it
// checks unateness of the output in every input exactly on the BDD and
// returns the implied protected cube keyed by cone input node id. ok is
// false when the function is binate in any variable. ErrNodeLimit
// signals BDD blow-up (callers should fall back to the SAT engine).
func CubeFromUnateness(cone *circuit.Circuit, maxNodes int) (cube map[int]bool, ok bool, err error) {
	if len(cone.Outputs) != 1 {
		return nil, false, fmt.Errorf("bdd: cone must have exactly one output")
	}
	inputs := cone.Inputs()
	m := New(len(inputs), maxNodes)
	nodes, err := FromCircuit(m, cone)
	if err != nil {
		return nil, false, err
	}
	f := nodes[cone.Outputs[0]]
	cube = make(map[int]bool, len(inputs))
	for i, id := range inputs {
		u, err := m.UnatenessIn(f, i)
		if err != nil {
			return nil, false, err
		}
		switch u {
		case PositiveUnate, Independent:
			// Match Algorithm 1's check order: positive wins ties.
			cube[id] = true
		case NegativeUnate:
			cube[id] = false
		default:
			return nil, false, nil
		}
	}
	return cube, true, nil
}

// EquivalentToStrip checks on the BDD whether the cone's output function
// equals strip_h(cube), the paper's §IV-C sufficiency check. cube is
// keyed by cone input node id.
func EquivalentToStrip(cone *circuit.Circuit, cube map[int]bool, h, maxNodes int) (bool, error) {
	if len(cone.Outputs) != 1 {
		return false, fmt.Errorf("bdd: cone must have exactly one output")
	}
	inputs := cone.Inputs()
	m := New(len(inputs), maxNodes)
	nodes, err := FromCircuit(m, cone)
	if err != nil {
		return false, err
	}
	f := nodes[cone.Outputs[0]]
	ref, err := stripBDD(m, inputs, cube, h)
	if err != nil {
		return false, err
	}
	return f == ref, nil // canonicity: equal functions are equal nodes
}

// stripBDD builds [HD(X, cube) == h] over the manager's variables using
// the dynamic-programming shell construction: count[j] after processing i
// variables is the BDD of "exactly j of the first i bits differ".
func stripBDD(m *Manager, inputs []int, cube map[int]bool, h int) (Node, error) {
	count := make([]Node, h+1)
	count[0] = True
	for j := 1; j <= h; j++ {
		count[j] = False
	}
	for i, id := range inputs {
		d := m.Var(i) // differs iff x_i != cube_i
		if cube[id] {
			var err error
			if d, err = m.Not(d); err != nil {
				return False, err
			}
		}
		nd, err := m.Not(d)
		if err != nil {
			return False, err
		}
		next := make([]Node, h+1)
		for j := h; j >= 0; j-- {
			same, err := m.And(count[j], nd)
			if err != nil {
				return False, err
			}
			next[j] = same
			if j > 0 {
				diff, err := m.And(count[j-1], d)
				if err != nil {
					return False, err
				}
				if next[j], err = m.Or(same, diff); err != nil {
					return False, err
				}
			}
		}
		count = next
	}
	return count[h], nil
}
