// Repo-level integration tests exercising the public surface the way the
// cmd tools and a downstream user would: BENCH files in, attacks out,
// across locking schemes and both SAT-engine and BDD-engine analyses.
package repro

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fall"
	"repro/internal/genbench"
	"repro/internal/keyconfirm"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/satattack"
	"repro/internal/testcirc"
)

// testCtx returns a context bounding one attack stage of a test.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestEndToEndViaBenchFiles mirrors the lockgen | fallattack pipeline:
// lock, serialize to BENCH, re-parse (losing all in-memory metadata), and
// attack the re-parsed netlist.
func TestEndToEndViaBenchFiles(t *testing.T) {
	spec, _ := genbench.ByName("c432")
	spec = genbench.Scaled([]genbench.Spec{spec}, 4, 14)[0]
	orig, err := genbench.Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{0, 2} {
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: spec.Keys, H: h, Seed: 9, Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		text := bench.WriteString(lr.Locked)
		reparsed, err := bench.ParseString(text, "locked")
		if err != nil {
			t.Fatalf("h=%d: reparse: %v\n%s", h, err, text[:200])
		}
		if got, want := len(reparsed.KeyInputs()), spec.Keys; got != want {
			t.Fatalf("h=%d: reparsed key inputs = %d, want %d", h, got, want)
		}
		res, err := fall.Attack(testCtx(t, 60*time.Second), reparsed, fall.Options{H: h})
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		found := false
		for _, ck := range res.Keys {
			match := len(ck.Key) == len(lr.Key)
			for k, v := range lr.Key {
				if ck.Key[k] != v {
					match = false
					break
				}
			}
			if match {
				found = true
			}
		}
		if !found {
			t.Errorf("h=%d: key not recovered through BENCH round trip (%d keys)", h, len(res.Keys))
		}
	}
}

// TestFullPipelineWithConfirmation drives the complete paper pipeline:
// FALL shortlist (possibly several keys) -> key confirmation -> validated
// unlock.
func TestFullPipelineWithConfirmation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	orig := testcirc.Random(rng, 16, 150)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 14, H: 3, Seed: 77, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fall.Attack(testCtx(t, 60*time.Second), lr.Locked, fall.Options{H: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Fatal("FALL stage produced no candidates")
	}
	var cands []map[string]bool
	for _, ck := range res.Keys {
		cands = append(cands, ck.Key)
	}
	orc := oracle.NewSim(orig)
	conf, err := keyconfirm.Confirm(testCtx(t, 60*time.Second), lr.Locked, cands, orc, keyconfirm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatalf("confirmation rejected all %d FALL candidates", len(cands))
	}
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), conf.Key, 512, 5); err != nil {
		t.Errorf("confirmed key fails validation: %v", err)
	}
}

// TestSATvsBDDEngineAgree cross-checks the two exact engines on stripper
// cones: the BDD unateness cube must match the SAT-based attack's cube.
func TestSATvsBDDEngineAgree(t *testing.T) {
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 21, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fall.Attack(context.Background(), lr.Locked, fall.Options{H: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 1 {
		t.Fatalf("want unique key, got %d", len(res.Keys))
	}
	satCube := res.Keys[0].Cube
	// BDD engine on the same candidate node.
	node := res.Keys[0].Node
	target := lr.Locked
	cone, im := target.Cone(node)
	if res.Keys[0].Negated {
		// Negate by adding a NOT at the output.
		out := cone.MustGate("negout", circuit.Not, cone.Outputs[0])
		cone.Outputs[0] = out
	}
	cube, ok, err := bdd.CubeFromUnateness(cone, 0)
	if err != nil || !ok {
		t.Fatalf("BDD engine failed: ok=%v err=%v", ok, err)
	}
	for ci, origID := range im {
		name := target.Nodes[origID].Name
		if cube[ci] != satCube[name] {
			t.Errorf("engines disagree on %s: bdd=%v sat=%v", name, cube[ci], satCube[name])
		}
	}
}

// TestAttackMatrix runs the combined attack across every locking scheme,
// documenting which schemes FALL applies to.
func TestAttackMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := testcirc.Random(rng, 12, 100)
	type row struct {
		name     string
		lockFn   func() (*lock.Result, error)
		h        int
		expected bool // FALL expected to recover the key
	}
	rows := []row{
		{"ttlock", func() (*lock.Result, error) {
			return lock.TTLock(orig, lock.Options{KeySize: 10, Seed: 1, Optimize: true})
		}, 0, true},
		{"sfll-hd2", func() (*lock.Result, error) {
			return lock.SFLLHD(orig, lock.Options{KeySize: 10, H: 2, Seed: 2, Optimize: true})
		}, 2, true},
		{"rll", func() (*lock.Result, error) {
			return lock.RandomXOR(orig, lock.Options{KeySize: 10, Seed: 3, Optimize: true})
		}, 0, false},
	}
	for _, r := range rows {
		lr, err := r.lockFn()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		res, err := fall.Attack(testCtx(t, 60*time.Second), lr.Locked, fall.Options{H: r.h})
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		got := false
		for _, ck := range res.Keys {
			match := len(ck.Key) == len(lr.Key)
			for k, v := range lr.Key {
				if ck.Key[k] != v {
					match = false
					break
				}
			}
			if match {
				got = true
			}
		}
		if got != r.expected {
			t.Errorf("%s: FALL recovered=%v, expected %v", r.name, got, r.expected)
		}
		// Whatever FALL does, the SAT attack must still break RLL.
		if r.name == "rll" {
			sa, err := satattack.Run(testCtx(t, 30*time.Second), lr.Locked, oracle.NewSim(orig), satattack.Options{})
			if err != nil || !sa.Solved {
				t.Errorf("rll: SAT attack failed: %v %+v", err, sa)
			}
		}
	}
}

// TestBenchFilesAreWellFormed spot-checks the serialized suite: every
// generated+locked circuit must survive a BENCH round trip functionally.
func TestBenchFilesAreWellFormed(t *testing.T) {
	specs := genbench.Scaled(genbench.TableI, 16, 10)[:5]
	for _, spec := range specs {
		orig, err := genbench.Generate(spec, 3)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: spec.Keys, H: 1, Seed: 4, Optimize: true})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		text := bench.WriteString(lr.Locked)
		back, err := bench.ParseString(text, spec.Name)
		if err != nil {
			t.Fatalf("%s: reparse: %v", spec.Name, err)
		}
		if !testcirc.EquivalentByName(lr.Locked, back, 64, 11) {
			t.Errorf("%s: BENCH round trip changed function", spec.Name)
		}
		if strings.Count(text, "INPUT(") != len(lr.Locked.Inputs()) {
			t.Errorf("%s: INPUT count mismatch", spec.Name)
		}
	}
}
