// SFLL-HDh attack walkthrough on a Table I-scale benchmark.
//
// Generates the synthetic "c880" benchmark (60 inputs, 327 gates), locks
// it with SFLL-HDh over 32 key bits for h = m/8 and h = m/4, and runs
// both applicable FALL functional analyses — a miniature of the paper's
// Fig. 5 panels 2 and 3 for one circuit. It reproduces the paper's
// finding that Distance2H defeats every configuration quickly while
// SlidingWindow degrades as h grows ("the SAT calls for larger values of
// h are computationally harder as they involve more adder gates in the
// Hamming Distance computation", §VI-B).
//
// Run: go run ./examples/sfll_hd
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/fall"
	"repro/internal/genbench"
	"repro/internal/lock"
)

func main() {
	spec, ok := genbench.ByName("c880")
	if !ok {
		log.Fatal("c880 spec missing")
	}
	const keyBits = 32
	orig, err := genbench.Generate(spec, 2019)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d inputs, %d outputs, %d gates; %d key bits\n\n",
		spec.Name, len(orig.PrimaryInputs()), len(orig.Outputs), orig.NumGates(), keyBits)

	for _, h := range []int{keyBits / 8, keyBits / 4} {
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: keyBits, H: h, Seed: 4, Optimize: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SFLL-HD%d: locked netlist has %d gates (original %d)\n",
			h, lr.Locked.NumGates(), orig.NumGates())
		for _, analysis := range []fall.Analysis{fall.SlidingWindow, fall.Distance2H} {
			atk := fall.New(fall.Options{Analysis: analysis})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := atk.Run(ctx, attack.Target{Locked: lr.Locked, H: h})
			cancel()
			if err != nil {
				log.Fatalf("%v: %v", analysis, err)
			}
			elapsed := res.Elapsed.Round(time.Millisecond)
			if res.Status == attack.StatusTimeout {
				fmt.Printf("  %-14s TIMEOUT after %v (expected for SlidingWindow at larger h — matches §VI-B)\n",
					analysis, elapsed)
				continue
			}
			correct := false
			for _, key := range res.Keys {
				if attack.KeysEqual(key, lr.Key) {
					correct = true
				}
			}
			details := res.Details.(*fall.Result)
			fmt.Printf("  %-14s %d comparators, %d candidates, %d key(s), correct=%v, unique=%v, %v\n",
				analysis, len(details.Comparators), len(details.Candidates), len(res.Keys),
				correct, res.UniqueKey(), elapsed)
		}
		fmt.Println()
	}

	fmt.Println("Distance2H recovers the 32-bit key from the netlist alone in under")
	fmt.Println("a few seconds; the SAT attack would need ~2^32 oracle queries here.")
}
