// Quickstart: the paper's running example end to end.
//
// Builds the circuit of Fig. 2a (y = ab + bc + ca + d), locks it with
// TTLock exactly as in Fig. 2b, optimizes it with structural hashing
// (the paper's Fig. 3 step), and then runs the FALL attack to recover the
// protected cube — all without any oracle access.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/circuit"
	"repro/internal/fall"
	"repro/internal/lock"
)

func main() {
	// Fig. 2a: y = (a AND b) OR (b AND c) OR (c AND a) OR d.
	orig := circuit.New("fig2a")
	a := orig.AddInput("a")
	b := orig.AddInput("b")
	c := orig.AddInput("c")
	d := orig.AddInput("d")
	ab := orig.MustGate("ab", circuit.And, a, b)
	bc := orig.MustGate("bc", circuit.And, b, c)
	ca := orig.MustGate("ca", circuit.And, c, a)
	y := orig.MustGate("y", circuit.Or, ab, bc, ca, d)
	orig.MarkOutput(y)
	fmt.Printf("original circuit: %d gates\n", orig.NumGates())

	// Lock with TTLock (SFLL-HD0), 4 key bits. Optimize=true runs the
	// netlist through AIG structural hashing, like the paper's ABC strash
	// pass (Fig. 3), hiding the locking structure.
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked circuit: %d gates, %d key inputs (%s)\n",
		lr.Locked.NumGates(), len(lr.Locked.KeyInputs()), lr.Algorithm)
	fmt.Printf("secret protected cube: %v\n", formatKey(lr.Cube))

	// FALL attack through the unified attack API: comparator
	// identification -> support-set matching -> AnalyzeUnateness ->
	// equivalence check. No oracle needed.
	res, err := attack.Run(context.Background(), "fall", attack.Target{Locked: lr.Locked, H: 0})
	if err != nil {
		log.Fatal(err)
	}
	details := res.Details.(*fall.Result)
	fmt.Printf("\nFALL attack (status %s):\n", res.Status)
	fmt.Printf("  comparators found: %d\n", len(details.Comparators))
	fmt.Printf("  candidate stripper gates: %d\n", len(details.Candidates))
	fmt.Printf("  keys shortlisted: %d (unique: %v)\n", len(res.Keys), res.UniqueKey())
	for _, ck := range details.Keys {
		fmt.Printf("  recovered key via %s: %v\n", ck.Analysis, formatKey(ck.Key))
	}

	// Check against the planted secret.
	for _, key := range res.Keys {
		if attack.KeysEqual(key, lr.Key) {
			fmt.Println("\nSUCCESS: recovered key matches the planted key — circuit unlocked without oracle access")
			return
		}
	}
	log.Fatal("attack failed to recover the planted key")
}

func formatKey(k map[string]bool) string {
	names := make([]string, 0, len(k))
	for n := range k {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		v := 0
		if k[n] {
			v = 1
		}
		s += fmt.Sprintf("%s=%d", n, v)
	}
	return s
}
