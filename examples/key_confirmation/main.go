// Key confirmation (paper §V): turning key guesses into a proven key.
//
// Locks a circuit with TTLock, then pretends the structural analyses
// shortlisted three candidate keys — the correct one, its bitwise
// complement (the classic ambiguity when both the stripper output and its
// negation appear in the netlist), and a random wrong guess. Key
// confirmation identifies the correct one with a handful of oracle
// queries, where the plain SAT attack would need ~2^20.
//
// Run: go run ./examples/key_confirmation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/genbench"
	"repro/internal/keyconfirm"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/satattack"
)

func main() {
	spec, _ := genbench.ByName("c432") // 36 inputs, 209 gates
	orig, err := genbench.Generate(spec, 99)
	if err != nil {
		log.Fatal(err)
	}
	const keyBits = 20
	lr, err := lock.TTLock(orig, lock.Options{KeySize: keyBits, Seed: 12, Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s locked with TTLock, %d key bits (key space 2^%d)\n", spec.Name, keyBits, keyBits)

	// Three "guessed" keys: correct, complement, random.
	correct := lr.Key
	complement := map[string]bool{}
	for k, v := range correct {
		complement[k] = !v
	}
	rng := rand.New(rand.NewSource(5))
	random := map[string]bool{}
	for k := range correct {
		random[k] = rng.Intn(2) == 1
	}
	candidates := []map[string]bool{complement, random, correct}

	orc := oracle.NewSim(orig)
	start := time.Now()
	res, err := keyconfirm.Confirm(lr.Locked, candidates, orc, keyconfirm.Options{
		Deadline: time.Now().Add(60 * time.Second),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Confirmed {
		log.Fatalf("confirmation returned ⊥ unexpectedly: %+v", res)
	}
	match := true
	for k, v := range correct {
		if res.Key[k] != v {
			match = false
		}
	}
	fmt.Printf("key confirmation: confirmed correct key=%v in %d iterations, %d oracle queries, %v\n",
		match, res.Iterations, res.OracleQueries, time.Since(start).Round(time.Millisecond))

	// Lemma 4's ⊥ guarantee: with only wrong guesses, confirmation says so.
	res2, err := keyconfirm.Confirm(lr.Locked, []map[string]bool{complement, random}, oracle.NewSim(orig),
		keyconfirm.Options{Deadline: time.Now().Add(60 * time.Second)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong guesses only: confirmed=%v (⊥ expected) after %d oracle queries\n",
		res2.Confirmed, res2.OracleQueries)

	// Contrast with the vanilla SAT attack under a tight budget.
	sa, err := satattack.Run(lr.Locked, oracle.NewSim(orig), time.Now().Add(5*time.Second), 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vanilla SAT attack: solved=%v after %d iterations in %v (needs ~2^%d iterations on TTLock)\n",
		sa.Solved, sa.Iterations, sa.Elapsed.Round(time.Millisecond), keyBits)
}
