// Key confirmation (paper §V): turning key guesses into a proven key.
//
// Locks a circuit with TTLock, then pretends the structural analyses
// shortlisted three candidate keys — the correct one, its bitwise
// complement (the classic ambiguity when both the stripper output and its
// negation appear in the netlist), and a random wrong guess. Key
// confirmation identifies the correct one with a handful of oracle
// queries, where the plain SAT attack would need ~2^20.
//
// Run: go run ./examples/key_confirmation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/genbench"
	"repro/internal/lock"
	"repro/internal/oracle"
)

func main() {
	spec, _ := genbench.ByName("c432") // 36 inputs, 209 gates
	orig, err := genbench.Generate(spec, 99)
	if err != nil {
		log.Fatal(err)
	}
	const keyBits = 20
	lr, err := lock.TTLock(orig, lock.Options{KeySize: keyBits, Seed: 12, Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s locked with TTLock, %d key bits (key space 2^%d)\n", spec.Name, keyBits, keyBits)

	// Three "guessed" keys: correct, complement, random.
	correct := lr.Key
	complement := map[string]bool{}
	for k, v := range correct {
		complement[k] = !v
	}
	rng := rand.New(rand.NewSource(5))
	random := map[string]bool{}
	for k := range correct {
		random[k] = rng.Intn(2) == 1
	}
	candidates := []attack.Key{complement, random, correct}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	res, err := attack.Run(ctx, "keyconfirm", attack.Target{
		Locked:     lr.Locked,
		Oracle:     oracle.NewSim(orig),
		Candidates: candidates,
	})
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	if !res.UniqueKey() {
		log.Fatalf("confirmation returned %s unexpectedly: %+v", res.Status, res)
	}
	fmt.Printf("key confirmation: confirmed correct key=%v in %d iterations, %d oracle queries, %v\n",
		attack.KeysEqual(res.Keys[0], correct), res.Iterations, res.OracleQueries,
		res.Elapsed.Round(time.Millisecond))

	// Lemma 4's ⊥ guarantee: with only wrong guesses, confirmation says so.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	res2, err := attack.Run(ctx2, "keyconfirm", attack.Target{
		Locked:     lr.Locked,
		Oracle:     oracle.NewSim(orig),
		Candidates: []attack.Key{complement, random},
	})
	cancel2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong guesses only: status=%s (refuted expected) after %d oracle queries\n",
		res2.Status, res2.OracleQueries)

	// Contrast with the vanilla SAT attack under a tight budget.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
	sa, err := attack.Run(ctx3, "sat", attack.Target{
		Locked:        lr.Locked,
		Oracle:        oracle.NewSim(orig),
		MaxIterations: 300,
	})
	cancel3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vanilla SAT attack: status=%s after %d iterations in %v (needs ~2^%d iterations on TTLock)\n",
		sa.Status, sa.Iterations, sa.Elapsed.Round(time.Millisecond), keyBits)
}
