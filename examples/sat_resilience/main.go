// SAT-attack resilience spectrum across locking schemes.
//
// Locks the same benchmark with RLL (pre-2015 style), SARLock, Anti-SAT
// and TTLock, then runs the SAT attack on each under the same iteration
// budget. RLL falls in a few iterations; the point-function schemes
// (SARLock, Anti-SAT, TTLock) exhaust the budget — the "SAT-resilient"
// behaviour that motivated the FALL attack. Finally, FALL cracks the
// TTLock instance oracle-free.
//
// Run: go run ./examples/sat_resilience
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/genbench"
	"repro/internal/lock"
	"repro/internal/oracle"
)

func main() {
	spec, _ := genbench.ByName("c880")
	orig, err := genbench.Generate(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	const keyBits = 16
	const iterBudget = 100

	type scheme struct {
		name string
		fn   func() (*lock.Result, error)
	}
	schemes := []scheme{
		{"RLL (random XOR)", func() (*lock.Result, error) {
			return lock.RandomXOR(orig, lock.Options{KeySize: keyBits, Seed: 3, Optimize: true})
		}},
		{"SARLock", func() (*lock.Result, error) {
			return lock.SARLock(orig, lock.Options{KeySize: keyBits, Seed: 4, Optimize: true})
		}},
		{"Anti-SAT", func() (*lock.Result, error) {
			return lock.AntiSAT(orig, lock.Options{KeySize: keyBits, Seed: 5, Optimize: true})
		}},
		{"TTLock", func() (*lock.Result, error) {
			return lock.TTLock(orig, lock.Options{KeySize: keyBits, Seed: 6, Optimize: true})
		}},
	}

	fmt.Printf("SAT attack with %d-iteration budget on %s (%d key bits):\n\n", iterBudget, spec.Name, keyBits)
	var ttlock *lock.Result
	for _, s := range schemes {
		lr, err := s.fn()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if s.name == "TTLock" {
			ttlock = lr
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res, err := attack.Run(ctx, "sat", attack.Target{
			Locked:        lr.Locked,
			Oracle:        oracle.NewSim(orig),
			MaxIterations: iterBudget,
		})
		cancel()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		verdict := "RESISTED (budget exhausted)"
		if res.UniqueKey() {
			if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Keys[0], 512, 1); err == nil {
				verdict = "BROKEN"
			} else {
				verdict = "converged to wrong key (bug!)"
			}
		}
		fmt.Printf("  %-18s %-28s %3d iterations, %v\n",
			s.name, verdict, res.Iterations, res.Elapsed.Round(time.Millisecond))
	}

	fmt.Printf("\nFALL attack on the TTLock instance (no oracle):\n")
	fres, err := attack.Run(context.Background(), "fall", attack.Target{Locked: ttlock.Locked, H: 0})
	if err != nil {
		log.Fatal(err)
	}
	correct := false
	for _, key := range fres.Keys {
		if attack.KeysEqual(key, ttlock.Key) {
			correct = true
		}
	}
	fmt.Printf("  %d key(s) shortlisted, correct key recovered: %v, in %v\n",
		len(fres.Keys), correct, fres.Elapsed.Round(time.Millisecond))
	if !correct {
		log.Fatal("FALL failed on TTLock — unexpected")
	}
}
