// Package repro's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (§VI), plus ablation benchmarks
// for the design choices called out in DESIGN.md. Each benchmark runs the
// same code path as cmd/fallbench at a reduced scale so `go test -bench=.`
// finishes in minutes; run cmd/fallbench -scale paper for full-dimension
// numbers.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/cnf"
	"repro/internal/exp"
	"repro/internal/fall"
	"repro/internal/genbench"
	"repro/internal/keyconfirm"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/sat"
	"repro/internal/sat/bddengine"
	"repro/internal/sat/testsolver"
	"repro/internal/satattack"
	"repro/internal/testcirc"
)

func benchConfig(nSpecs int) exp.Config {
	return exp.Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:nSpecs],
		Seed:       2019,
		Timeout:    2 * time.Second,
		SATIterCap: 30,
	}
}

// BenchmarkTable1 regenerates Table I (benchmark + locking statistics).
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig(4)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig5Panel(b *testing.B, level exp.HLevel) {
	cfg := benchConfig(3)
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := exp.Fig5Panel(context.Background(), cases, level, cfg)
		solved := 0
		for _, o := range outs {
			if o.Solved && o.Attack != "SAT-Attack" {
				solved++
			}
		}
		if solved == 0 {
			b.Fatal("no FALL attack solved any instance")
		}
	}
}

// BenchmarkFig5HD0 regenerates Fig. 5 panel 1 (SFLL-HD0: SAT attack vs
// AnalyzeUnateness).
func BenchmarkFig5HD0(b *testing.B) { benchFig5Panel(b, exp.HD0) }

// BenchmarkFig5H8 regenerates Fig. 5 panel 2 (h=m/8: SAT attack vs
// SlidingWindow vs Distance2H).
func BenchmarkFig5H8(b *testing.B) { benchFig5Panel(b, exp.HM8) }

// BenchmarkFig5H4 regenerates Fig. 5 panel 3 (h=m/4).
func BenchmarkFig5H4(b *testing.B) { benchFig5Panel(b, exp.HM4) }

// BenchmarkFig5H3 regenerates Fig. 5 panel 4 (h=m/3, SlidingWindow only).
func BenchmarkFig5H3(b *testing.B) { benchFig5Panel(b, exp.HM3) }

// BenchmarkFig6 regenerates Fig. 6 (key confirmation vs SAT attack mean
// runtimes).
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig(2)
	var cases []*exp.Case
	for i, spec := range cfg.Specs {
		cs, err := exp.BuildCase(spec, exp.HD0, cfg.Seed+int64(i)*1009)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, cs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig6(context.Background(), cases, cfg)
		for _, r := range rows {
			if r.KCConfirmed != r.KCRuns {
				b.Fatalf("%s: confirmation failed", r.Circuit)
			}
		}
	}
}

// BenchmarkSummary regenerates the §VI-B summary statistics (defeated /
// unique-key counts over the suite).
func BenchmarkSummary(b *testing.B) {
	cfg := benchConfig(3)
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := exp.Summarize(context.Background(), cases, cfg)
		if s.Defeated == 0 {
			b.Fatal("nothing defeated")
		}
	}
}

// --- Serial vs parallel (worker-pool engine) benchmarks ---

// benchSuiteWorkers measures the §VI-B summary suite (the heaviest
// harness loop: one Auto FALL attack per case) at a fixed harness worker
// count. On a multi-core runner the 4-worker variant should run at least
// 2x faster than the serial one; the Summary statistics are identical.
func benchSuiteWorkers(b *testing.B, workers int) {
	cfg := benchConfig(3)
	cfg.Workers = workers
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := exp.Summarize(context.Background(), cases, cfg)
		if s.Defeated == 0 {
			b.Fatal("nothing defeated")
		}
	}
}

// BenchmarkSuiteWorkers1 runs the summary suite serially.
func BenchmarkSuiteWorkers1(b *testing.B) { benchSuiteWorkers(b, 1) }

// BenchmarkSuiteWorkers4 runs the summary suite on a 4-worker pool.
func BenchmarkSuiteWorkers4(b *testing.B) { benchSuiteWorkers(b, 4) }

// benchFALLWorkers measures the FALL candidate×polarity grid at a fixed
// attack worker count on one mid-size SFLL-HD instance.
func benchFALLWorkers(b *testing.B, workers int) {
	lr := ablationCase(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fall.Attack(context.Background(), lr.Locked, fall.Options{
			H: 4, Analysis: fall.SlidingWindow, Workers: workers,
		})
		if err != nil || len(res.Keys) == 0 {
			b.Fatalf("attack failed: %v (%d keys)", err, len(res.Keys))
		}
	}
}

// BenchmarkFALLGridWorkers1 runs the FALL analysis grid serially.
func BenchmarkFALLGridWorkers1(b *testing.B) { benchFALLWorkers(b, 1) }

// BenchmarkFALLGridWorkers4 runs the FALL analysis grid on 4 workers.
func BenchmarkFALLGridWorkers4(b *testing.B) { benchFALLWorkers(b, 4) }

// benchFig5Workers measures a Fig. 5 panel regeneration at a fixed
// harness worker count.
func benchFig5Workers(b *testing.B, workers int) {
	cfg := benchConfig(3)
	cfg.Workers = workers
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := exp.Fig5Panel(context.Background(), cases, exp.HD0, cfg)
		if len(outs) == 0 {
			b.Fatal("no outcomes")
		}
	}
}

// BenchmarkFig5Workers1 regenerates the HD0 panel serially.
func BenchmarkFig5Workers1(b *testing.B) { benchFig5Workers(b, 1) }

// BenchmarkFig5Workers4 regenerates the HD0 panel on a 4-worker pool.
func BenchmarkFig5Workers4(b *testing.B) { benchFig5Workers(b, 4) }

// --- Ablation benchmarks (DESIGN.md experiment E9) ---

func ablationCase(b *testing.B, h int) *lock.Result {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	orig := testcirc.Random(rng, 16, 200)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 16, H: h, Seed: 5, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	return lr
}

func benchEncoding(b *testing.B, enc cnf.CardEncoding) {
	lr := ablationCase(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fall.Attack(context.Background(), lr.Locked, fall.Options{H: 4, Analysis: fall.SlidingWindow, Enc: enc})
		if err != nil || len(res.Keys) == 0 {
			b.Fatalf("attack failed: %v (%d keys)", err, len(res.Keys))
		}
	}
}

// BenchmarkAblationEncodingAdderTree measures the SlidingWindow attack
// with the adder-tree Hamming-distance encoding.
func BenchmarkAblationEncodingAdderTree(b *testing.B) { benchEncoding(b, cnf.AdderTree) }

// BenchmarkAblationEncodingSeqCounter measures the same attack with the
// Sinz sequential-counter encoding.
func BenchmarkAblationEncodingSeqCounter(b *testing.B) { benchEncoding(b, cnf.SeqCounter) }

func benchPrefilter(b *testing.B, disable bool) {
	lr := ablationCase(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fall.Attack(context.Background(), lr.Locked, fall.Options{H: 0, DisableSimPrefilter: disable})
		if err != nil || len(res.Keys) == 0 {
			b.Fatalf("attack failed: %v", err)
		}
	}
}

// BenchmarkAblationUnatenessWithPrefilter measures AnalyzeUnateness with
// the random-simulation binate pre-filter enabled (default).
func BenchmarkAblationUnatenessWithPrefilter(b *testing.B) { benchPrefilter(b, false) }

// BenchmarkAblationUnatenessNoPrefilter measures pure-SAT unateness
// checking.
func BenchmarkAblationUnatenessNoPrefilter(b *testing.B) { benchPrefilter(b, true) }

func benchKeyConfirm(b *testing.B, disableDDIP bool, keyBits int) {
	rng := rand.New(rand.NewSource(23))
	orig := testcirc.Random(rng, keyBits+2, 150)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: keyBits, Seed: 9, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	comp := map[string]bool{}
	for k, v := range lr.Key {
		comp[k] = !v
	}
	cands := []map[string]bool{comp, lr.Key}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := keyconfirm.Confirm(ctx, lr.Locked, cands, oracle.NewSim(orig), keyconfirm.Options{
			DisableDoubleDIP: disableDDIP,
		})
		cancel()
		if err != nil || !res.Confirmed {
			b.Fatalf("confirmation failed: %v %+v", err, res)
		}
	}
}

// BenchmarkAblationKeyConfirmDoubleDIP measures key confirmation with the
// double-DIP acceleration (12-bit TTLock key).
func BenchmarkAblationKeyConfirmDoubleDIP(b *testing.B) { benchKeyConfirm(b, false, 12) }

// BenchmarkAblationKeyConfirmPureAlg4 measures the paper's Algorithm 4
// verbatim on a deliberately small key (8 bits) where single-DIP
// convergence is feasible.
func BenchmarkAblationKeyConfirmPureAlg4(b *testing.B) { benchKeyConfirm(b, true, 8) }

// --- Serial vs portfolio (solver-engine racing) benchmarks ---

// benchSolverEngine solves PHP(8,7) — a restart/heuristic-sensitive
// UNSAT proof, the query class portfolio racing targets — on a single
// engine or an n-way portfolio.
func benchSolverEngine(b *testing.B, n int) {
	for i := 0; i < b.N; i++ {
		var e sat.Engine
		if n <= 1 {
			e = sat.New()
		} else {
			e = sat.NewPortfolio(sat.PortfolioConfigs(sat.Config{}, n), nil)
		}
		const p, holes = 8, 7
		vars := make([][]int, p)
		for pi := range vars {
			vars[pi] = make([]int, holes)
			for hi := range vars[pi] {
				vars[pi][hi] = e.NewVar()
			}
		}
		for pi := 0; pi < p; pi++ {
			lits := make([]sat.Lit, holes)
			for hi := 0; hi < holes; hi++ {
				lits[hi] = sat.PosLit(vars[pi][hi])
			}
			e.AddClause(lits...)
		}
		for hi := 0; hi < holes; hi++ {
			for a := 0; a < p; a++ {
				for bb := a + 1; bb < p; bb++ {
					e.AddClause(sat.NegLit(vars[a][hi]), sat.NegLit(vars[bb][hi]))
				}
			}
		}
		if e.Solve() != sat.Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

// BenchmarkSolverEngineSingle is the single-engine baseline for the
// portfolio benchmarks.
func BenchmarkSolverEngineSingle(b *testing.B) { benchSolverEngine(b, 1) }

// BenchmarkSolverEnginePortfolio3 races three configured engines per
// query (first verdict wins, losers cancelled).
func BenchmarkSolverEnginePortfolio3(b *testing.B) { benchSolverEngine(b, 3) }

// benchFALLSolver measures the FALL SlidingWindow attack with every
// candidate×polarity cell solving through the given portfolio width.
func benchFALLSolver(b *testing.B, portfolio int) {
	lr := ablationCase(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setup := attack.NewSolverSetup(sat.Config{}, portfolio)
		res, err := fall.Attack(context.Background(), lr.Locked, fall.Options{
			H: 4, Analysis: fall.SlidingWindow, Solver: setup.Factory(),
		})
		if err != nil || len(res.Keys) == 0 {
			b.Fatalf("attack failed: %v (%d keys)", err, len(res.Keys))
		}
	}
}

// BenchmarkFALLSolverSingle runs the grid on default single engines.
func BenchmarkFALLSolverSingle(b *testing.B) { benchFALLSolver(b, 1) }

// BenchmarkFALLSolverPortfolio3 races a 3-engine portfolio per query in
// every grid cell.
func BenchmarkFALLSolverPortfolio3(b *testing.B) { benchFALLSolver(b, 3) }

// --- Substrate micro-benchmarks ---

// BenchmarkSATSolverPigeonhole exercises the CDCL core on PHP(8,7), a
// classic resolution-hard instance.
func BenchmarkSATSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		const p, holes = 8, 7
		vars := make([][]int, p)
		for pi := range vars {
			vars[pi] = make([]int, holes)
			for hi := range vars[pi] {
				vars[pi][hi] = s.NewVar()
			}
		}
		for pi := 0; pi < p; pi++ {
			lits := make([]sat.Lit, holes)
			for hi := 0; hi < holes; hi++ {
				lits[hi] = sat.PosLit(vars[pi][hi])
			}
			s.AddClause(lits...)
		}
		for hi := 0; hi < holes; hi++ {
			for a := 0; a < p; a++ {
				for bb := a + 1; bb < p; bb++ {
					s.AddClause(sat.NegLit(vars[a][hi]), sat.NegLit(vars[bb][hi]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

// BenchmarkStrash measures AIG structural hashing on a Table I-scale
// netlist (the paper's ABC optimization step).
func BenchmarkStrash(b *testing.B) {
	spec, _ := genbench.ByName("des")
	orig, err := genbench.Generate(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 64, H: 16, Seed: 2, Optimize: true})
		if err != nil {
			b.Fatal(err)
		}
		if lr.Locked.NumGates() == 0 {
			b.Fatal("empty locked circuit")
		}
	}
}

// benchConeEngine loads the SFLL-HD cube-stripper shell [HD(x,c) == h]
// over an n-input cone into a fresh engine and runs the two
// FALL-shaped query classes against it: a SAT on-set witness query and
// an UNSAT exclusion query (the protected cube itself cannot sit on the
// shell). This is the query mix on which the BDD engine competes with
// CDCL — exact reasoning on small structured cones — and the benchmark
// pair BenchmarkConeSAT/BenchmarkConeBDD locates the crossover cone
// size recorded in the README.
func benchConeEngine(b *testing.B, n int, mk func() sat.Engine) {
	rng := rand.New(rand.NewSource(int64(n)))
	cube := make([]bool, n)
	for i := range cube {
		cube[i] = rng.Intn(2) == 1
	}
	h := n / 4
	if h < 1 {
		h = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := mk()
		enc := cnf.NewEncoder(e)
		xs := make([]sat.Lit, n)
		cs := make([]sat.Lit, n)
		onCube := make([]sat.Lit, n)
		for j := 0; j < n; j++ {
			xs[j] = enc.NewLit()
			cs[j] = enc.ConstLit(cube[j])
			onCube[j] = attack.LitWithValue(xs[j], cube[j])
		}
		enc.HammingEq(xs, cs, h, cnf.AdderTree)
		got := e.Solve()
		if be, ok := e.(*bddengine.Engine); ok && got == sat.Unknown && be.LimitReached() {
			// The engine's designed fallthrough: report where the node
			// budget gives out instead of failing the benchmark run.
			b.Skipf("n=%d: ROBDD node budget exceeded (portfolio falls through to SAT here)", n)
		}
		if got != sat.Sat {
			b.Fatalf("n=%d: shell on-set query: %v", n, got)
		}
		if got := e.SolveAssuming(onCube); got != sat.Unsat {
			b.Fatalf("n=%d: cube exclusion query: %v", n, got)
		}
	}
}

// BenchmarkConeSAT runs the cube-stripper cone queries on the internal
// CDCL engine across cone sizes.
func BenchmarkConeSAT(b *testing.B) {
	for _, n := range []int{8, 12, 16, 20, 24, 32} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchConeEngine(b, n, func() sat.Engine { return sat.New() })
		})
	}
}

// BenchmarkConeBDD runs the same queries on the BDD engine (default
// node budget; the shell's ROBDD is O(n·h) nodes, but it is built from
// the Tseitin clause stream, which is the honest comparison — both
// engines see the identical sat.Engine interface).
func BenchmarkConeBDD(b *testing.B) {
	for _, n := range []int{8, 12, 16, 20, 24, 32} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchConeEngine(b, n, func() sat.Engine { return bddengine.New(0) })
		})
	}
}

// BenchmarkSATAttackIterations measures per-iteration cost of the SAT
// attack loop (capped) on a mid-size TTLock instance.
func BenchmarkSATAttackIterations(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 18, 200)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 16, Seed: 3, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := satattack.Run(context.Background(), lr.Locked, oracle.NewSim(orig), satattack.Options{MaxIterations: 20})
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations == 0 {
			b.Fatal("no iterations performed")
		}
	}
}

// --- Fleet scheduling benchmarks (campaign work stealing) ---

// benchFleetPlan is the shared heterogeneous-fleet fixture: a small
// summary campaign whose every solver query runs through the process
// stub, so a wrapper script that sleeps before answering turns one
// worker into a slow machine without touching any verdict.
func benchFleetPlan(b *testing.B) (*campaign.Plan, string, string) {
	b.Helper()
	if runtime.GOOS == "windows" {
		b.Skip("slow-worker wrapper is a shell script")
	}
	stub := testsolver.Build(b)
	slow := filepath.Join(b.TempDir(), "slowstub")
	// 350ms per query makes the slow worker ~9x slower per case than
	// the plain stub — slow enough that the fast worker drains every
	// unclaimed case before the slow worker's first claim completes,
	// which is the steady state of a real heterogeneous fleet.
	body := "#!/bin/sh\nexec " + stub + " -sleep=350ms \"$@\"\n"
	if err := os.WriteFile(slow, []byte(body), 0o755); err != nil {
		b.Fatal(err)
	}
	cfg := campaign.Config{
		Specs:      genbench.Scaled(genbench.TableI, 64, 6)[:2],
		Seed:       2019,
		SATIterCap: 40,
		Solver:     "process:cmd=" + stub,
		Suites:     []string{"summary"},
	}
	plan, err := campaign.NewPlan(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return plan, stub, slow
}

// benchFleet runs a two-worker fleet (one ~8x slower via the sleeping
// stub) over the fixture plan and returns once both workers exit; the
// measured time is the fleet makespan. run is invoked once per worker
// with that worker's options.
func benchFleet(b *testing.B, plan *campaign.Plan, dir string, opts [2]campaign.RunOptions) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(opts))
	for w := range opts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = campaign.Run(context.Background(), plan, dir, opts[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			b.Fatalf("worker %d: %v", w, err)
		}
	}
}

// BenchmarkFleetMakespan compares the two fleet schedulers on a
// heterogeneous two-worker fleet: static index-modulo sharding pins
// half the plan to the slow machine, so the fleet waits on it; claim-
// file work stealing lets the fast machine drain the shared directory
// while the slow one contributes what it can. The modulo/steal
// ns_per_op ratio is the scheduling win (BENCH_campaign.json).
func BenchmarkFleetMakespan(b *testing.B) {
	plan, stub, slow := benchFleetPlan(b)
	slowSpec := "process:cmd=" + slow
	fastSpec := "process:cmd=" + stub
	b.Run("modulo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchFleet(b, plan, b.TempDir(), [2]campaign.RunOptions{
				{ShardIndex: 0, ShardCount: 2, Workers: 1, SolverOverride: slowSpec},
				{ShardIndex: 1, ShardCount: 2, Workers: 1, SolverOverride: fastSpec},
			})
		}
	})
	b.Run("steal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchFleet(b, plan, b.TempDir(), [2]campaign.RunOptions{
				{Steal: true, Workers: 1, Owner: "slow", Lease: time.Minute, SolverOverride: slowSpec},
				{Steal: true, Workers: 1, Owner: "fast", Lease: time.Minute, SolverOverride: fastSpec},
			})
		}
	})
}

// benchMemoFrozen builds the frozen prefix the memo benchmarks query:
// PHP(7,6), a non-trivial UNSAT instance, so a miss pays a real solve
// while a hit is a pure cache lookup.
func benchMemoFrozen() *sat.Frozen {
	s := sat.NewStream()
	const p, holes = 7, 6
	vars := make([][]int, p)
	for pi := range vars {
		vars[pi] = make([]int, holes)
		for hi := range vars[pi] {
			vars[pi][hi] = s.NewVar()
		}
	}
	for pi := 0; pi < p; pi++ {
		lits := make([]sat.Lit, holes)
		for hi := 0; hi < holes; hi++ {
			lits[hi] = sat.PosLit(vars[pi][hi])
		}
		s.AddClause(lits...)
	}
	for hi := 0; hi < holes; hi++ {
		for a := 0; a < p; a++ {
			for bb := a + 1; bb < p; bb++ {
				s.AddClause(sat.NegLit(vars[a][hi]), sat.NegLit(vars[bb][hi]))
			}
		}
	}
	return s.Freeze()
}

// memoBenchSolve runs the benchmark query through one fresh MemoEngine
// over m and returns which tier answered it.
func memoBenchSolve(b *testing.B, frozen *sat.Frozen, m *sat.Memo) sat.MemoTier {
	e := sat.NewMemoEngine(m, nil, sat.New())
	sat.Prime(e, frozen)
	if st := e.Solve(); st != sat.Unsat {
		b.Fatalf("PHP(7,6): %v, want Unsat", st)
	}
	return e.LastTier()
}

// BenchmarkMemoHit measures an in-memory (L1) verdict-cache hit: key
// hashing plus one map lookup, no solver.
func BenchmarkMemoHit(b *testing.B) {
	frozen := benchMemoFrozen()
	memo := sat.NewMemo(0)
	memoBenchSolve(b, frozen, memo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tier := memoBenchSolve(b, frozen, memo); tier != sat.TierMemory {
			b.Fatalf("tier %v, want memory", tier)
		}
	}
}

// BenchmarkMemoMiss measures the same query uncached — the full solve
// the memo tiers amortize (plus store overhead).
func BenchmarkMemoMiss(b *testing.B) {
	frozen := benchMemoFrozen()
	for i := 0; i < b.N; i++ {
		if tier := memoBenchSolve(b, frozen, sat.NewMemo(0)); tier != sat.TierMiss {
			b.Fatalf("tier %v, want miss", tier)
		}
	}
}

// BenchmarkDiskMemoColdWarm measures the persistent tier's two ends:
// cold (miss + record write-through) vs warm (a fresh process — empty
// memory tier — answering from the on-disk store).
func BenchmarkDiskMemoColdWarm(b *testing.B) {
	frozen := benchMemoFrozen()
	b.Run("cold", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			d, err := sat.OpenDiskMemo(fmt.Sprintf("%s/%d", dir, i), 0)
			if err != nil {
				b.Fatal(err)
			}
			m := sat.NewMemo(0)
			m.AttachDisk(d)
			if tier := memoBenchSolve(b, frozen, m); tier != sat.TierMiss {
				b.Fatalf("tier %v, want miss", tier)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		d, err := sat.OpenDiskMemo(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		seed := sat.NewMemo(0)
		seed.AttachDisk(d)
		memoBenchSolve(b, frozen, seed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh store handle per iteration models a fresh process:
			// the open-time walk plus one record read replace the solve.
			d2, err := sat.OpenDiskMemo(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			m := sat.NewMemo(0)
			m.AttachDisk(d2)
			if tier := memoBenchSolve(b, frozen, m); tier != sat.TierDisk {
				b.Fatalf("tier %v, want disk", tier)
			}
		}
	})
}
